"""Tests for the 14-benchmark workload catalog (Table 2)."""

import pytest

from repro.trace.phases import BarrierPhase, ComputePhase, LockPhase
from repro.workloads import (
    ALL_SPECS,
    BENCHMARK_ORDER,
    PARSEC_NAMES,
    SCALES,
    SPLASH2_NAMES,
    benchmark_names,
    build_program,
    parsec_spec,
    spec_of,
    splash2_spec,
    table2_rows,
)


class TestCatalog:
    def test_fourteen_benchmarks(self):
        assert len(benchmark_names()) == 14

    def test_paper_benchmark_set(self):
        expected = {
            "barnes", "cholesky", "fft", "ocean", "radix", "raytrace",
            "tomcatv", "unstructured", "waternsq", "watersp",
            "blackscholes", "fluidanimate", "swaptions", "x264",
        }
        assert set(benchmark_names()) == expected

    def test_suite_split(self):
        assert len(SPLASH2_NAMES) == 10
        assert len(PARSEC_NAMES) == 4

    def test_table2_input_sizes(self):
        rows = {name: size for _, name, size in table2_rows()}
        assert rows["barnes"] == "8192 bodies, 4 time steps"
        assert rows["cholesky"] == "tk16.0"
        assert rows["fft"] == "256K complex doubles"
        assert rows["ocean"] == "258x258 ocean"
        assert rows["radix"] == "1M keys, 1024 radix"
        assert rows["raytrace"] == "Teapot"
        assert rows["waternsq"] == "512 molecules, 4 time steps"
        assert rows["blackscholes"] == "simsmall"
        assert rows["x264"] == "simsmall"

    def test_spec_lookup(self):
        assert spec_of("ocean").suite == "splash2"
        assert spec_of("x264").suite == "parsec"
        with pytest.raises(KeyError):
            spec_of("doom")

    def test_suite_specific_lookup(self):
        assert splash2_spec("barnes").name == "barnes"
        assert parsec_spec("swaptions").name == "swaptions"
        with pytest.raises(KeyError):
            splash2_spec("x264")
        with pytest.raises(KeyError):
            parsec_spec("ocean")

    def test_lock_bound_benchmarks_have_locks(self):
        for name in ("unstructured", "fluidanimate", "raytrace"):
            assert spec_of(name).lock_ops_per_interval > 0

    def test_contention_free_benchmarks(self):
        """Paper: blackscholes/swaptions only synchronize at the end."""
        for name in ("blackscholes", "swaptions"):
            s = spec_of(name)
            assert s.lock_ops_per_interval == 0
            assert s.barrier_intervals == 1

    def test_barrier_heavy_benchmarks(self):
        assert spec_of("ocean").barrier_intervals >= 10
        assert spec_of("radix").barrier_intervals >= 8


class TestProgramConstruction:
    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_builds_for_every_benchmark(self, name):
        prog = build_program(name, 4, scale="tiny")
        assert prog.num_threads == 4
        assert prog.total_instructions() > 0

    def test_thread_ids_ordered(self):
        prog = build_program("fft", 8, scale="tiny")
        assert [t.thread_id for t in prog.threads] == list(range(8))

    def test_deterministic(self):
        a = build_program("ocean", 4, scale="tiny", seed=5)
        b = build_program("ocean", 4, scale="tiny", seed=5)
        assert a == b

    def test_seed_changes_imbalance(self):
        a = build_program("ocean", 4, scale="tiny", seed=5)
        b = build_program("ocean", 4, scale="tiny", seed=6)
        assert a != b

    def test_scale_scales_work(self):
        small = build_program("fft", 4, scale="tiny")
        big = build_program("fft", 4, scale="small")
        assert big.total_instructions() > 2 * small.total_instructions()

    def test_numeric_scale(self):
        prog = build_program("fft", 4, scale=0.5)
        assert prog.total_instructions() > 0

    def test_every_thread_ends_with_barrier(self):
        prog = build_program("radix", 4, scale="tiny")
        for t in prog.threads:
            assert isinstance(t.phases[-1], BarrierPhase)

    def test_lock_ids_within_pool(self):
        prog = build_program("fluidanimate", 8, scale="tiny")
        pool = spec_of("fluidanimate").num_locks
        for t in prog.threads:
            for ph in t.phases:
                if isinstance(ph, LockPhase):
                    assert 0 <= ph.lock_id < pool

    def test_barrier_count_matches_spec(self):
        prog = build_program("ocean", 4, scale="tiny")
        n_barriers = sum(
            isinstance(ph, BarrierPhase) for ph in prog.threads[0].phases
        )
        assert n_barriers == spec_of("ocean").barrier_intervals

    def test_imbalance_produces_unequal_work(self):
        prog = build_program("ocean", 8, scale="small")
        works = [t.total_instructions() for t in prog.threads]
        assert max(works) > min(works)

    def test_balanced_benchmark_nearly_equal(self):
        prog = build_program("blackscholes", 8, scale="small")
        works = [t.total_instructions() for t in prog.threads]
        assert max(works) < 1.3 * min(works)

    def test_rejects_bad_scale(self):
        with pytest.raises(KeyError):
            build_program("fft", 4, scale="galactic")
        with pytest.raises(ValueError):
            build_program("fft", 4, scale=-1.0)

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            build_program("fft", 0)

    def test_scales_registry(self):
        assert set(SCALES) == {"tiny", "small", "medium", "large"}
        assert SCALES["tiny"] < SCALES["small"] < SCALES["medium"] < SCALES["large"]

    def test_all_specs_have_positive_footprints(self):
        for s in ALL_SPECS:
            assert s.footprint_lines > 0
            assert 0 <= s.shared_fraction <= 1
